package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/benchio"
)

func TestBenchWritesReportAndTable(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_test.json")
	var stdout, stderr bytes.Buffer
	code := realMain([]string{
		"bench", "-quick", "-opts", "none,diffsets", "-workers", "1",
		"-perms", "3", "-minsup", "100", "-rev", "test", "-out", out,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("bench exited %d, stderr: %s", code, stderr.String())
	}
	for _, want := range []string{"dataset", "diffsets", "vs-none", "# wrote"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("table missing %q:\n%s", want, stdout.String())
		}
	}
	rep, err := benchio.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rev != "test" || len(rep.Entries) != 2 {
		t.Fatalf("report = rev %q, %d entries; want test, 2", rep.Rev, len(rep.Entries))
	}
	for _, e := range rep.Entries {
		if e.NsPerOp <= 0 || e.WordSpeedup <= 0 {
			t.Errorf("entry not measured: %+v", e)
		}
	}
}

func TestBenchBaselineGate(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH_a.json")
	run := func(args ...string) (int, string, string) {
		var stdout, stderr bytes.Buffer
		code := realMain(append([]string{
			"bench", "-quick", "-opts", "diffsets", "-workers", "1",
			"-perms", "3", "-minsup", "100", "-rev", "a",
		}, args...), &stdout, &stderr)
		return code, stdout.String(), stderr.String()
	}
	if code, _, stderr := run("-out", out); code != 0 {
		t.Fatalf("first run exited %d: %s", code, stderr)
	}

	// Same environment: the gate compares and passes. Tolerance 0.99
	// accepts any healthy ratio — micro-runs of single-digit perms are
	// far too noisy to assert 20% timing stability in a unit test; the
	// regression-detection arithmetic itself is pinned deterministically
	// below and in benchio's Compare tests.
	out2 := filepath.Join(dir, "BENCH_b.json")
	code, stdout, stderr := run("-out", out2, "-baseline", out, "-tolerance", "0.99")
	if code != 0 {
		t.Fatalf("gate against own baseline exited %d: %s", code, stderr)
	}
	if !strings.Contains(stdout, "no regressions") {
		t.Errorf("expected gate confirmation, got:\n%s", stdout)
	}

	base, err := benchio.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}

	// A baseline whose speedups are unreachably high must fail the gate
	// (deterministic: no real run can be within 20% of 1000x).
	doctored := *base
	doctored.Entries = append([]benchio.Entry(nil), base.Entries...)
	for i := range doctored.Entries {
		doctored.Entries[i].SpeedupVsNone *= 1000
		doctored.Entries[i].WordSpeedup *= 1000
	}
	impossible := filepath.Join(dir, "BENCH_impossible.json")
	if err := benchio.WriteFile(impossible, &doctored); err != nil {
		t.Fatal(err)
	}
	code, _, stderr = run("-out", out2, "-baseline", impossible)
	if code != 1 {
		t.Fatalf("doctored baseline exited %d, want 1; stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "regression") {
		t.Errorf("expected regression report on stderr, got:\n%s", stderr)
	}

	// A baseline from a different environment is skipped, not compared —
	// even one that would otherwise fail.
	doctored.CPUs++
	foreign := filepath.Join(dir, "BENCH_foreign.json")
	if err := benchio.WriteFile(foreign, &doctored); err != nil {
		t.Fatal(err)
	}
	code, stdout, stderr = run("-out", out2, "-baseline", foreign)
	if code != 0 {
		t.Fatalf("foreign baseline exited %d: %s", code, stderr)
	}
	if !strings.Contains(stdout, "skipping regression gate") {
		t.Errorf("expected environment skip, got:\n%s", stdout)
	}
}

func TestBenchRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"bench", "-opts", "bogus"},
		{"bench", "-workers", "x"},
		{"bench", "-perms", "-5"},
		{"bench", "-in", "a.csv", "-uci", "german"},
		{"bench", "stray"},
	} {
		var stdout, stderr bytes.Buffer
		if code := realMain(args, &stdout, &stderr); code != 1 {
			t.Errorf("%v exited %d, want 1", args, code)
		}
	}
}
