package main

import (
	"flag"
	"io"
	"os"
	"regexp"
	"strings"
	"testing"
)

// flagToken matches "-flagname" appearing after whitespace or a backtick
// in a documented armine invocation.
var flagToken = regexp.MustCompile("(?:^|[\\s`(])-([a-z][a-z0-9-]*)")

// armineWord matches armine as a complete command word, so lines about
// the armine-vet analyzer binary (a different program with go vet's flag
// surface) are not mistaken for CLI invocations.
var armineWord = regexp.MustCompile("(?:^|[\\s/`])armine(?:\\s|$)")

// armineInvocations extracts every documented armine command line from
// the fenced sh blocks of a markdown file, with backslash continuations
// joined.
func armineInvocations(t *testing.T, path string) []string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var (
		cmds    []string
		inFence bool
		cur     string
	)
	for _, line := range strings.Split(string(data), "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "```") {
			inFence = strings.HasPrefix(trimmed, "```sh")
			continue
		}
		if !inFence {
			continue
		}
		if cur != "" {
			cur += " " + trimmed
		} else if armineWord.MatchString(trimmed) {
			cur = trimmed
		}
		if strings.HasSuffix(cur, "\\") {
			cur = strings.TrimSuffix(cur, "\\")
			continue
		}
		if cur != "" {
			cmds = append(cmds, cur)
			cur = ""
		}
	}
	return cmds
}

// TestReadmeFlagsExist fails when a README armine example uses a flag
// the CLI does not define — the drift that creeps in when flags are
// renamed without re-reading the docs. Subcommand flag sets come from
// the same constructors the real runs use.
func TestReadmeFlagsExist(t *testing.T) {
	sets := map[string]*flag.FlagSet{
		"mine":    newMineFlags(io.Discard).fs,
		"serve":   newServeFlags(io.Discard).fs,
		"bench":   newBenchFlags(io.Discard).fs,
		"convert": newConvertFlags(io.Discard).fs,
	}
	cmds := armineInvocations(t, "../../README.md")
	if len(cmds) < 4 {
		t.Fatalf("found only %d armine invocations in README.md; the extractor is broken:\n%v", len(cmds), cmds)
	}
	for _, cmd := range cmds {
		sub := "mine" // bare flags default to mine
		for name := range sets {
			if strings.Contains(cmd, "armine "+name) {
				sub = name
				break
			}
		}
		for _, m := range flagToken.FindAllStringSubmatch(cmd, -1) {
			name := m[1]
			if sets[sub].Lookup(name) == nil {
				t.Errorf("README documents %q but armine %s defines no -%s\n  in: %s",
					"-"+name, sub, name, cmd)
			}
		}
	}
}

// TestDocCommentFlagsExist applies the same check to the command's own
// doc comment examples (main.go's package comment is the manpage).
func TestDocCommentFlagsExist(t *testing.T) {
	data, err := os.ReadFile("main.go")
	if err != nil {
		t.Fatal(err)
	}
	src := string(data)
	src = src[:strings.Index(src, "package main")]
	sets := map[string]*flag.FlagSet{
		"mine":    newMineFlags(io.Discard).fs,
		"serve":   newServeFlags(io.Discard).fs,
		"bench":   newBenchFlags(io.Discard).fs,
		"convert": newConvertFlags(io.Discard).fs,
	}
	checked := 0
	for _, line := range strings.Split(src, "\n") {
		line = strings.TrimPrefix(strings.TrimSpace(line), "//")
		if !strings.Contains(line, "armine ") {
			continue
		}
		sub := ""
		for name := range sets {
			if strings.Contains(line, "armine "+name) {
				sub = name
				break
			}
		}
		if sub == "" {
			if strings.Contains(line, "armine -") {
				sub = "mine"
			} else {
				continue
			}
		}
		for _, m := range flagToken.FindAllStringSubmatch(line, -1) {
			if m[1] == "h" {
				continue // -h is flag's built-in help
			}
			checked++
			if sets[sub].Lookup(m[1]) == nil {
				t.Errorf("doc comment documents -%s but armine %s does not define it\n  in: %s", m[1], sub, line)
			}
		}
	}
	if checked < 10 {
		t.Fatalf("checked only %d doc-comment flags; the extractor is broken", checked)
	}
}
