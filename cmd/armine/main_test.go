package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro"
)

func TestSetMethod(t *testing.T) {
	cases := map[string]repro.Method{
		"none":        repro.MethodNone,
		"direct":      repro.MethodDirect,
		"Permutation": repro.MethodPermutation, // case-insensitive
		" holdout ":   repro.MethodHoldout,     // whitespace-tolerant (from -methods lists)
		"layered":     repro.MethodLayered,
	}
	for name, want := range cases {
		var cfg repro.Config
		if err := setMethod(&cfg, name); err != nil {
			t.Errorf("setMethod(%q): %v", name, err)
		} else if cfg.Method != want {
			t.Errorf("setMethod(%q) = %v, want %v", name, cfg.Method, want)
		}
	}
	var cfg repro.Config
	if err := setMethod(&cfg, "bogus"); err == nil {
		t.Error("unknown method accepted")
	}
	if err := setMethod(&cfg, "holdout"); err != nil || !cfg.HoldoutRandom {
		t.Error("holdout should select the random split")
	}
}

func TestLoadDatasetSelection(t *testing.T) {
	if _, err := loadDataset("", "", 1); err == nil {
		t.Error("neither -in nor -uci should fail")
	}
	if _, err := loadDataset("x.csv", "german", 1); err == nil {
		t.Error("both -in and -uci should fail")
	}
	if _, err := loadDataset("", "german", 1); err != nil {
		t.Errorf("-uci german failed: %v", err)
	}
	if _, err := loadDataset("/nonexistent/file.csv", "", 1); err == nil {
		t.Error("missing file should fail")
	}
	// A real CSV file loads.
	dir := t.TempDir()
	path := filepath.Join(dir, "d.csv")
	if err := os.WriteFile(path, []byte("a,class\nx,y\nz,w\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := loadDataset(path, "", 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumRecords() != 2 {
		t.Errorf("records = %d", d.NumRecords())
	}
}
