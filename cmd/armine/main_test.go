package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
)

// writeTempCSV drops a small mineable CSV and returns its path.
func writeTempCSV(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "d.csv")
	var b strings.Builder
	b.WriteString("color,class\n")
	for i := 0; i < 30; i++ {
		b.WriteString("red,yes\n")
	}
	for i := 0; i < 30; i++ {
		b.WriteString("blue,no\n")
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRealMainDispatch covers the subcommand surface: bare flags fall back
// to mine, "help" succeeds, unknown commands and unknown flags fail with
// exit 1 and a message on stderr only.
func TestRealMainDispatch(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := realMain([]string{"help"}, &stdout, &stderr); code != 0 {
		t.Errorf("help exit = %d, stderr %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "serve") {
		t.Errorf("help output missing subcommands: %q", stdout.String())
	}
	stdout.Reset()
	stderr.Reset()
	if code := realMain([]string{"bogus"}, &stdout, &stderr); code != 1 {
		t.Errorf("unknown command exit = %d", code)
	}
	if !strings.Contains(stderr.String(), "unknown command") || stdout.Len() != 0 {
		t.Errorf("unknown command: stderr=%q stdout=%q", stderr.String(), stdout.String())
	}
	stdout.Reset()
	stderr.Reset()
	if code := realMain([]string{"mine", "-bogusflag"}, &stdout, &stderr); code != 1 {
		t.Errorf("unknown flag exit = %d", code)
	}
	if stdout.Len() != 0 {
		t.Errorf("unknown flag leaked to stdout: %q", stdout.String())
	}
}

// TestMineJSONErrorsToStderr is the -json error-handling regression:
// failures must reach stderr with a non-zero exit and NEVER the JSON
// stream on stdout.
func TestMineJSONErrorsToStderr(t *testing.T) {
	cases := [][]string{
		{"-json"}, // no input selected
		{"-json", "-in", "/nonexistent/file.csv"},                                // unreadable input
		{"-json", "-uci", "german"},                                              // no -minsup / -minsup-frac
		{"-uci", "german", "-minsup", "60", "-json", "-methods", "direct,bogus"}, // bad method token
		{"-uci", "german", "-minsup", "60", "-json", "-control", "bogus"},        // bad control
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if code := realMain(args, &stdout, &stderr); code != 1 {
			t.Errorf("%v: exit = %d, want 1", args, code)
		}
		if stdout.Len() != 0 {
			t.Errorf("%v: error leaked into the JSON stream: %q", args, stdout.String())
		}
		if stderr.Len() == 0 {
			t.Errorf("%v: no error on stderr", args)
		}
	}
}

// TestMineMethodsRejectedUpFront pins that a bad -methods token fails
// before any dataset work: the error names the token, and an empty token
// (trailing comma) is an error rather than a silent skip.
func TestMineMethodsRejectedUpFront(t *testing.T) {
	// The input file does not exist — if methods were validated after the
	// dataset load, the error would be about the file instead.
	var stdout, stderr bytes.Buffer
	code := realMain([]string{"-in", "/nonexistent/file.csv", "-minsup", "5", "-methods", "direct,bogus"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(stderr.String(), "bogus") {
		t.Errorf("error does not name the bad token: %q", stderr.String())
	}
	if strings.Contains(stderr.String(), "no such file") {
		t.Errorf("dataset was loaded before method validation: %q", stderr.String())
	}
	stderr.Reset()
	if code := realMain([]string{"-in", "/nonexistent/file.csv", "-minsup", "5", "-methods", "direct,"}, &stdout, &stderr); code != 1 {
		t.Errorf("trailing comma exit = %d, want 1 (empty tokens must not be silently skipped)", code)
	}
}

// TestMineJSONOutput runs a real -json mine and checks stdout is exactly
// one parseable JSON array, with per-run wire fields populated.
func TestMineJSONOutput(t *testing.T) {
	path := writeTempCSV(t)
	var stdout, stderr bytes.Buffer
	code := realMain([]string{"mine", "-in", path, "-minsup", "5", "-json", "-methods", "none,direct"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, stderr %s", code, stderr.String())
	}
	var runs []repro.RunJSON
	if err := json.Unmarshal(stdout.Bytes(), &runs); err != nil {
		t.Fatalf("stdout is not a JSON array: %v\n%s", err, stdout.String())
	}
	if len(runs) != 2 || runs[0].Method != "none" || runs[1].Method != "direct" {
		t.Fatalf("runs = %+v", runs)
	}
	if runs[0].NumRecords != 60 {
		t.Errorf("num_records = %d, want 60", runs[0].NumRecords)
	}
}

// TestServeFlagValidation covers serve's argument surface without binding
// a listener.
func TestServeFlagValidation(t *testing.T) {
	cases := [][]string{
		{"serve", "-bogus"},
		{"serve", "-preload", "malformed"},
		{"serve", "-preload", "name=/nonexistent/file.csv"},
		{"serve", "positional"},
		// A stray positional in mine would silently drop every flag after
		// it (flag parsing stops there) — reject instead.
		{"mine", "-uci", "german", "-minsup", "60", "stray", "-method", "permutation"},
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if code := realMain(args, &stdout, &stderr); code != 1 {
			t.Errorf("%v: exit = %d, want 1", args, code)
		}
	}
}

func TestSetMethod(t *testing.T) {
	cases := map[string]repro.Method{
		"none":        repro.MethodNone,
		"direct":      repro.MethodDirect,
		"Permutation": repro.MethodPermutation, // case-insensitive
		" holdout ":   repro.MethodHoldout,     // whitespace-tolerant (from -methods lists)
		"layered":     repro.MethodLayered,
	}
	for name, want := range cases {
		var cfg repro.Config
		if err := setMethod(&cfg, name); err != nil {
			t.Errorf("setMethod(%q): %v", name, err)
		} else if cfg.Method != want {
			t.Errorf("setMethod(%q) = %v, want %v", name, cfg.Method, want)
		}
	}
	var cfg repro.Config
	if err := setMethod(&cfg, "bogus"); err == nil {
		t.Error("unknown method accepted")
	}
	if err := setMethod(&cfg, "holdout"); err != nil || !cfg.HoldoutRandom {
		t.Error("holdout should select the random split")
	}
}

func TestLoadDatasetSelection(t *testing.T) {
	if _, err := loadDataset("", "", 1); err == nil {
		t.Error("neither -in nor -uci should fail")
	}
	if _, err := loadDataset("x.csv", "german", 1); err == nil {
		t.Error("both -in and -uci should fail")
	}
	if _, err := loadDataset("", "german", 1); err != nil {
		t.Errorf("-uci german failed: %v", err)
	}
	if _, err := loadDataset("/nonexistent/file.csv", "", 1); err == nil {
		t.Error("missing file should fail")
	}
	// A real CSV file loads.
	dir := t.TempDir()
	path := filepath.Join(dir, "d.csv")
	if err := os.WriteFile(path, []byte("a,class\nx,y\nz,w\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := loadDataset(path, "", 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumRecords() != 2 {
		t.Errorf("records = %d", d.NumRecords())
	}
}
