package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLoadDatasetSelection(t *testing.T) {
	if _, err := loadDataset("", "", 1); err == nil {
		t.Error("neither -in nor -uci should fail")
	}
	if _, err := loadDataset("x.csv", "german", 1); err == nil {
		t.Error("both -in and -uci should fail")
	}
	if _, err := loadDataset("", "german", 1); err != nil {
		t.Errorf("-uci german failed: %v", err)
	}
	if _, err := loadDataset("/nonexistent/file.csv", "", 1); err == nil {
		t.Error("missing file should fail")
	}
	// A real CSV file loads.
	dir := t.TempDir()
	path := filepath.Join(dir, "d.csv")
	if err := os.WriteFile(path, []byte("a,class\nx,y\nz,w\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := loadDataset(path, "", 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumRecords() != 2 {
		t.Errorf("records = %d", d.NumRecords())
	}
}
