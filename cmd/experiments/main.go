// Command experiments regenerates the figures and tables of Liu, Zhang &
// Wong (VLDB 2011). Each figure is printed as aligned text series (x
// column plus one column per line in the paper's plot); tables print as
// aligned text tables.
//
// Usage:
//
//	experiments -list
//	experiments -fig fig6 [-full] [-datasets N] [-perms N] [-seed S]
//	experiments -fig all
//
// The default scale is reduced (≈10 Monte-Carlo datasets, 100
// permutations) so every figure finishes quickly; -full switches to the
// paper's scale (100 datasets, 1000 permutations).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/experiments"
)

// runner produces the renderable outputs of one figure/table.
type runner func(o experiments.Options) ([]string, error)

func figs(fs []*experiments.Figure, err error) ([]string, error) {
	if err != nil {
		return nil, err
	}
	var out []string
	for _, f := range fs {
		out = append(out, f.Render())
	}
	return out, nil
}

func fig(f *experiments.Figure, err error) ([]string, error) {
	if err != nil {
		return nil, err
	}
	return []string{f.Render()}, nil
}

func tab(t *experiments.Table, err error) ([]string, error) {
	if err != nil {
		return nil, err
	}
	return []string{t.Render()}, nil
}

var runners = map[string]runner{
	"fig1":   func(o experiments.Options) ([]string, error) { return fig(experiments.Fig1(), nil) },
	"fig2":   func(o experiments.Options) ([]string, error) { return tab(experiments.Fig2(), nil) },
	"fig3":   func(o experiments.Options) ([]string, error) { return fig(experiments.Fig3(o)) },
	"fig4":   func(o experiments.Options) ([]string, error) { return figs(experiments.Fig4(o)) },
	"fig5":   func(o experiments.Options) ([]string, error) { return figs(experiments.Fig5(o)) },
	"fig6":   func(o experiments.Options) ([]string, error) { return figs(experiments.Fig6(o)) },
	"fig7":   func(o experiments.Options) ([]string, error) { return fig(experiments.Fig7(o)) },
	"fig8":   func(o experiments.Options) ([]string, error) { return figs(experiments.Fig8(o)) },
	"fig9":   func(o experiments.Options) ([]string, error) { return fig(experiments.Fig9(), nil) },
	"fig10":  func(o experiments.Options) ([]string, error) { return figs(experiments.Fig10(o)) },
	"fig11":  func(o experiments.Options) ([]string, error) { return fig(experiments.Fig11(o)) },
	"fig12":  func(o experiments.Options) ([]string, error) { return figs(experiments.Fig12(o)) },
	"fig13":  func(o experiments.Options) ([]string, error) { return figs(experiments.Fig13(o)) },
	"fig14":  func(o experiments.Options) ([]string, error) { return figs(experiments.Fig14(o)) },
	"fig15":  func(o experiments.Options) ([]string, error) { return fig(experiments.Fig15(o)) },
	"fig16":  func(o experiments.Options) ([]string, error) { return figs(experiments.Fig16(o)) },
	"table4": func(o experiments.Options) ([]string, error) { return tab(experiments.Table4(o)) },
	// Extensions beyond the paper's figures (ablations of this
	// reproduction's design choices).
	"ext-redundancy":   func(o experiments.Options) ([]string, error) { return fig(experiments.ExtRedundancy(o)) },
	"ext-testkinds":    func(o experiments.Options) ([]string, error) { return tab(experiments.ExtTestKinds(o)) },
	"ext-bufferbudget": func(o experiments.Options) ([]string, error) { return tab(experiments.ExtBufferBudget(o)) },
}

func names() []string {
	out := make([]string, 0, len(runners))
	for k := range runners {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		// figN numerically, then tables, then extensions alphabetically.
		key := func(s string) (int, int) {
			if strings.HasPrefix(s, "fig") {
				var n int
				fmt.Sscanf(s, "fig%d", &n)
				return 0, n
			}
			if strings.HasPrefix(s, "table") {
				return 1, 0
			}
			return 2, 0
		}
		ti, ni := key(out[i])
		tj, nj := key(out[j])
		if ti != tj {
			return ti < tj
		}
		if ni != nj {
			return ni < nj
		}
		return out[i] < out[j]
	})
	return out
}

func main() {
	var (
		figFlag  = flag.String("fig", "", "figure/table id to run (e.g. fig6, table4, all)")
		list     = flag.Bool("list", false, "list available figures and tables")
		full     = flag.Bool("full", false, "paper-scale run (100 datasets, 1000 permutations)")
		datasets = flag.Int("datasets", 0, "override Monte-Carlo dataset count per point")
		perms    = flag.Int("perms", 0, "override permutation count")
		seed     = flag.Uint64("seed", 1, "base random seed")
		workers  = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		quiet    = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()

	if *list {
		for _, n := range names() {
			fmt.Println(n)
		}
		return
	}
	if *figFlag == "" {
		fmt.Fprintln(os.Stderr, "usage: experiments -fig <id|all> [-full] [-datasets N] [-perms N]")
		fmt.Fprintln(os.Stderr, "       experiments -list")
		os.Exit(2)
	}

	o := experiments.Options{
		Full:     *full,
		Datasets: *datasets,
		Perms:    *perms,
		Seed:     *seed,
		Workers:  *workers,
	}
	if !*quiet {
		o.Progress = func(msg string) { fmt.Fprintln(os.Stderr, "  "+msg) }
	}

	targets := []string{*figFlag}
	if *figFlag == "all" {
		targets = names()
	}
	for _, name := range targets {
		r, ok := runners[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown figure %q; use -list\n", name)
			os.Exit(2)
		}
		start := time.Now()
		outputs, err := r(o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		for _, s := range outputs {
			fmt.Println(s)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "  %s done in %v\n", name, time.Since(start).Round(time.Millisecond))
		}
	}
}
