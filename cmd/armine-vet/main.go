// Command armine-vet is the repo's invariant checker: it drives the
// internal/analysis suite (detlint, noalloc, arenalint, ctxlint) over Go
// packages, either standalone (`armine-vet ./...`) or as a cmd/go vettool
// (`go vet -vettool=$(which armine-vet) ./...`), and exits nonzero on any
// diagnostic. The analyzers and the //armine: annotation grammar they
// enforce are documented in DESIGN.md §9.
package main

import "repro/internal/analysis/driver"

func main() { driver.Main() }
